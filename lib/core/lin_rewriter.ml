open Obda_syntax
open Obda_ontology
open Obda_cq
module Ndl = Obda_ndl.Ndl
module Optimize = Obda_ndl.Optimize
module Budget = Obda_runtime.Budget
module Fault = Obda_runtime.Fault
module Error = Obda_runtime.Error
module Obs = Obda_obs.Obs

let type_guard = 100_000

(* all total types over [vars]: products of per-variable candidate words *)
let slice_types tbox q cands vars =
  let per_var =
    List.map
      (fun z -> List.filter (Word_type.locally_ok tbox q z) cands)
      vars
  in
  let count =
    List.fold_left (fun acc l -> acc * max 1 (List.length l)) 1 per_var
  in
  if count > type_guard then
    Error.not_applicable ~algorithm:"Lin"
      "slice type space exceeds %d (ontology too deep for this CQ)" type_guard;
  let rec product acc = function
    | [] -> [ acc ]
    | (z, ws) :: rest ->
      List.concat_map (fun w -> product (Cq.Var_map.add z w acc) rest) ws
  in
  product Cq.Var_map.empty (List.combine vars per_var)

(* the inter-slice compatibility of (w,s) for consecutive slices *)
let pair_compatible tbox q slice_n ty =
  List.for_all
    (fun atom ->
      match atom with
      | Cq.Unary _ -> true
      | Cq.Binary (p, y, z) ->
        if y = z then true
        else
          let crosses =
            (List.mem y slice_n && Cq.Var_map.mem z ty && not (List.mem z slice_n))
            || (List.mem z slice_n && Cq.Var_map.mem y ty && not (List.mem y slice_n))
          in
          if crosses && Cq.Var_map.mem y ty && Cq.Var_map.mem z ty then
            Word_type.pair_ok tbox p (Cq.Var_map.find y ty) (Cq.Var_map.find z ty)
          else true)
    (Cq.atoms q)

let rewrite ?(budget = Budget.none) ?root tbox q =
  Obs.with_span "rewrite.lin" (fun () ->
  if not (Cq.is_tree_shaped q && Cq.is_connected q) then
    Error.not_applicable ~algorithm:"Lin" "CQ must be tree-shaped and connected";
  let d =
    match Tbox.depth tbox with
    | Tbox.Finite d -> d
    | Tbox.Infinite ->
      Error.not_applicable ~algorithm:"Lin" "ontology of infinite depth"
  in
  let root =
    match root with
    | Some r -> r
    | None -> (
      match Cq.answer_vars q with v :: _ -> v | [] -> List.hd (Cq.vars q))
  in
  let g = Cq.gaifman q in
  let slices =
    Ugraph.bfs_layers g (Cq.var_index q root)
    |> List.map (List.map (Cq.var_of_index q))
  in
  let slices = Array.of_list slices in
  let m = Array.length slices - 1 in
  let cands = Word_type.candidates tbox ~max_depth:d in
  let x = Cq.answer_vars q in
  (* x^n: answer variables occurring at depth ≥ n *)
  let x_from = Array.make (m + 1) [] in
  for n = m downto 0 do
    let here = List.filter (fun v -> List.mem v slices.(n)) x in
    x_from.(n) <-
      here @ (if n = m then [] else x_from.(n + 1))
  done;
  let types = Array.init (m + 1) (fun n -> slice_types tbox q cands slices.(n)) in
  (* predicate per (slice, type) *)
  let pred_table : (int * Word_type.word Cq.Var_map.t, Symbol.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let counter = ref 0 in
  let params = ref Symbol.Map.empty in
  let head_of n ty =
    let key = (n, ty) in
    let p =
      match Hashtbl.find_opt pred_table key with
      | Some p -> p
      | None ->
        incr counter;
        let p = Symbol.fresh (Printf.sprintf "Glin%d_%d" n !counter) in
        Hashtbl.add pred_table key p;
        p
    in
    let z_exists = List.filter (fun v -> not (List.mem v x)) slices.(n) in
    let args = z_exists @ x_from.(n) in
    params := Symbol.Map.add p (List.length x_from.(n)) !params;
    (p, List.map (fun v -> Ndl.Var v) args)
  in
  let clauses = ref [] in
  let emit head body =
    Fault.hit Fault.rewrite_lin_emit;
    Budget.step budget;
    Budget.grow ~by:(1 + List.length body) budget;
    Obs.incr "ndl.clauses_emitted";
    Obs.count "ndl.atoms_emitted" (1 + List.length body);
    (* head variables must occur in the body; pad with active-domain atoms *)
    let body_vars = List.concat_map Ndl.atom_vars body in
    let missing =
      List.filter_map
        (function
          | Ndl.Var v when not (List.mem v body_vars) -> Some (Ndl.Dom (Ndl.Var v))
          | Ndl.Var _ | Ndl.Cst _ -> None)
        (snd head)
    in
    clauses := { Ndl.head; body = body @ missing } :: !clauses
  in
  (* internal clauses: slice n -> slice n+1 *)
  for n = 0 to m - 1 do
    List.iter
      (fun w ->
        List.iter
          (fun s ->
            Budget.step budget;
            let union =
              Cq.Var_map.union (fun _ a _ -> Some a) w s
            in
            if pair_compatible tbox q slices.(n) union then begin
              let head = head_of n w in
              let scope = slices.(n) @ slices.(n + 1) in
              let emit_for v = List.mem v slices.(n) in
              let at = Word_type.at_atoms tbox q ~scope ~emit_for union in
              let _, next_args = head_of (n + 1) s in
              let next_pred, _ = head_of (n + 1) s in
              emit head (at @ [ Ndl.Pred (next_pred, next_args) ])
            end)
          types.(n + 1))
      types.(n)
  done;
  (* base clauses for the last slice *)
  List.iter
    (fun w ->
      let head = head_of m w in
      let at =
        Word_type.at_atoms tbox q ~scope:slices.(m) ~emit_for:(fun _ -> true) w
      in
      emit head at)
    types.(m);
  (* goal clauses *)
  let goal = Symbol.fresh "GLin" in
  List.iter
    (fun w ->
      let p0, args0 = head_of 0 w in
      emit (goal, List.map (fun v -> Ndl.Var v) x) [ Ndl.Pred (p0, args0) ])
    types.(0);
  params := Symbol.Map.add goal (List.length x) !params;
  let query = Ndl.make ~params:!params ~goal ~goal_args:x (List.rev !clauses) in
  (* every predicate created here is intensional, even when it ended up with
     no defining clause (a type with no compatible continuation) — clauses
     mentioning those must be pruned, not treated as extensional lookups *)
  let generated =
    Hashtbl.fold (fun _ p acc -> Symbol.Set.add p acc) pred_table
      (Symbol.Set.singleton goal)
  in
  Ndl.observe
    (Optimize.prune ~edb:(fun p -> not (Symbol.Set.mem p generated)) query))
