(** The linear NDL-rewriting Π^Lin of Section 3.3, for OMQs with ontologies
    of finite depth and tree-shaped CQs.

    The CQ is rooted and cut into slices z⁰, z¹, … by distance from the root;
    one predicate G_n^w per slice n and type w (a map from the slice's
    variables to witness words) is defined from G_{n+1}^s for every
    compatible pair (w,s).  The result is a linear NDL program of width ≤ 2ℓ
    over complete data instances. *)

open Obda_ontology
open Obda_cq

val rewrite :
  ?budget:Obda_runtime.Budget.t ->
  ?root:Cq.var ->
  Tbox.t ->
  Cq.t ->
  Obda_ndl.Ndl.query
(** Raises [Obda_runtime.Error.Obda_error (Not_applicable _)] if the CQ is
    not tree-shaped and connected, if the ontology has infinite depth, or if
    the slice type space is too large; [Budget_exhausted] when clause
    generation outgrows [budget]. *)
