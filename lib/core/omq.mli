(** Ontology-mediated queries and the top-level rewriting/answering API.

    An OMQ is a pair Q(x) = (T, q(x)).  [classify] places it in the
    complexity landscape of Fig. 1; [rewrite] produces an NDL-rewriting with
    the requested algorithm (over complete or arbitrary data instances);
    [answer] evaluates a rewriting over an ABox, checking consistency
    first. *)

open Obda_syntax
open Obda_ontology
open Obda_cq
open Obda_data

type t = { tbox : Tbox.t; cq : Cq.t }

val make : Tbox.t -> Cq.t -> t

type algorithm =
  | Tw  (** Section 3.4: tree witnesses, LOGCFL, any-depth ontology *)
  | Lin  (** Section 3.3: slices, NL, finite-depth ontology *)
  | Log  (** Section 3.2: tree decomposition, LOGCFL, finite-depth ontology *)
  | Ucq  (** PerfectRef baseline (Clipper star) *)
  | Ucq_condensed  (** PerfectRef + subsumption pruning (Rapid star) *)
  | Presto_like  (** flat tree-witness baseline (Presto star) *)

val all_algorithms : algorithm list
val algorithm_name : algorithm -> string

val algorithm_of_string : string -> algorithm option
(** The CLI/protocol spellings: ["tw"], ["lin"], ["log"], ["ucq"]/["clipper"],
    ["ucq-condensed"]/["rapid"], ["presto"]/["flat-tw"] (case-insensitive). *)

val default_algorithm : t -> algorithm
(** [Tw] for forest-shaped CQs, [Log] otherwise — the choice [answer] makes
    when no algorithm is requested. *)

val applicable : algorithm -> t -> bool
(** Whether the algorithm's side conditions hold (tree shape, finite depth…). *)

val digest : ?over:[ `Complete | `Arbitrary ] -> algorithm -> t -> string
(** A content digest of (TBox, CQ, algorithm, [over]) (default
    [`Arbitrary]), canonical up to axiom and atom order — the
    content-addressed key under which the service layer caches rewritings:
    equal digests guarantee interchangeable rewritings. *)

type classification = {
  ontology_depth : Tbox.depth;
  treewidth : int;  (** upper bound from the decomposition *)
  tree_shaped : bool;
  leaves : int option;  (** for tree-shaped CQs *)
  linear : bool;
  classes : string list;
      (** the OMQ(·,·,·) classes of Fig. 1 the OMQ belongs to *)
}

val classify : t -> classification
val pp_classification : Format.formatter -> classification -> unit

val rewrite :
  ?budget:Obda_runtime.Budget.t ->
  ?over:[ `Complete | `Arbitrary ] ->
  ?consistency:bool ->
  algorithm -> t -> Obda_ndl.Ndl.query
(** Default [`Arbitrary].  The UCQ baselines are rewritings over arbitrary
    instances natively; Tw/Lin/Log are produced over complete instances and
    passed through the ∗-transformation (the linearity-preserving Lemma 3
    construction for Lin) when [`Arbitrary] is requested.

    When the algorithm's side conditions fail, raises
    [Obda_runtime.Error.Obda_error (Not_applicable _)]; when clause
    generation outgrows [budget], [Budget_exhausted].

    With [~consistency:true] (and [`Arbitrary]), the ⊥-axioms of the
    ontology are compiled in following the remark at the end of Section 2:
    the program outputs every tuple over the active domain when (T,A) is
    inconsistent, so [Eval] alone computes certain answers on any data. *)

val answer :
  ?pool:Obda_runtime.Pool.t ->
  ?budget:Obda_runtime.Budget.t ->
  ?plan:Obda_ndl.Eval.plan_cache ->
  ?naive:bool ->
  ?on_inconsistent:[ `All_tuples | `Error ] ->
  ?algorithm:algorithm -> t -> Abox.t -> Symbol.t list list
(** Certain answers via rewriting + NDL evaluation.  Defaults to [Tw] for
    tree-shaped CQs and [Log] otherwise.  If (T,A) is inconsistent, every
    tuple over ind(A) is returned (of the answer arity), per the convention
    at the end of Section 2 — or, with [~on_inconsistent:`Error],
    [Obda_error (Inconsistent_data _)] is raised instead.

    [pool] is handed to {!Obda_ndl.Eval.run}: evaluation is partitioned
    across the pool's workers with byte-identical answers for any worker
    count.  Rewriting and the consistency pre-check stay on the calling
    domain.

    The consistency pre-check is memoised against {!Abox.revision}:
    repeated [answer] calls over the same unchanged instance run the check
    once.

    [plan] and [naive] are handed to the evaluator: [plan] caches the
    compiled program across calls (useful when the caller also memoises
    the rewriting, as [Prepared] does — each [answer] call otherwise
    rewrites afresh and the cache never hits), [naive] selects the legacy
    written-order engine as a baseline. *)

val answer_assuming_consistent :
  ?pool:Obda_runtime.Pool.t ->
  ?budget:Obda_runtime.Budget.t ->
  ?plan:Obda_ndl.Eval.plan_cache ->
  ?naive:bool ->
  ?algorithm:algorithm -> t -> Abox.t -> Symbol.t list list
(** [answer] without the consistency pre-check, for callers that maintain
    their own consistency token (the service layer's sessions).  Unsound on
    data whose consistency has not been established: certain answers follow
    the paper's convention only through the check. *)

val all_tuples : Abox.t -> int -> Symbol.t list list
(** Every tuple over ind(A) of the given arity — the inconsistency
    convention of Section 2, exposed for callers of
    {!answer_assuming_consistent} that implement the convention
    themselves. *)

val answer_certain :
  ?budget:Obda_runtime.Budget.t ->
  ?on_inconsistent:[ `All_tuples | `Error ] ->
  t -> Abox.t -> Symbol.t list list
(** Ground-truth answers via the canonical model (chase), for testing. *)

val explain :
  ?budget:Obda_runtime.Budget.t ->
  ?naive:bool ->
  ?algorithm:algorithm -> t -> Abox.t -> string list
(** Rewrite the OMQ and return {!Obda_ndl.Eval.explain} lines for the
    rewriting over this instance: the evaluator's chosen atom order and
    per-atom access strategy for every clause (the [--explain] CLI
    output).  Evaluates the query as a side effect, so plans reflect the
    true relation sizes. *)

(** {2 Graceful degradation} *)

type attempt = {
  algorithm : algorithm;
  trial : int;
      (** 1 for the first attempt of an algorithm, incremented per retry *)
  outcome : (unit, Obda_runtime.Error.t) result;
      (** [Ok ()] for the attempt that produced the answer; [Error e] with
          the [Not_applicable] or [Budget_exhausted] error that made the
          chain retry or fall through to the next algorithm *)
  duration : float;  (** wall-clock seconds spent on this attempt *)
}

type fallback_answer = {
  answers : Symbol.t list list;
  answered_by : algorithm option;
      (** [None] when the inconsistency convention produced the answers
          without running any rewriting *)
  attempts : attempt list;
      (** every attempt in chain order, the successful one (if any) last *)
}

val default_chain : algorithm -> algorithm list
(** The preferred algorithm followed by the always-applicable baselines:
    Presto*(TW), then the UCQ engines. *)

type retry = {
  max_retries : int;  (** extra trials per algorithm beyond the first *)
  escalation : float;
      (** multiplier applied to the step/size sub-budget limits on each
          retry (via {!Obda_runtime.Budget.sub_scaled}) *)
}

val no_retry : retry
(** [{ max_retries = 0; escalation = 2. }] — the default: every algorithm
    gets exactly one trial. *)

val default_retry : retry
(** [{ max_retries = 2; escalation = 2. }]. *)

val answer_with_fallback :
  ?pool:Obda_runtime.Pool.t ->
  ?budget:Obda_runtime.Budget.t ->
  ?retry:retry ->
  ?chain:algorithm list ->
  ?on_inconsistent:[ `All_tuples | `Error ] ->
  t -> Abox.t -> fallback_answer
(** Try each algorithm of [chain] (default
    [default_chain] of the OMQ's preferred algorithm) in order.  An attempt
    that raises [Not_applicable] or [Budget_exhausted] is recorded (with why
    it failed and how long it ran) and the next algorithm is tried under a
    fresh step/size allowance; the wall-clock deadline of [budget] is shared
    across attempts, so fallback never extends a request's total time
    allowance.  If every algorithm fails, the last error is re-raised.

    With [~retry] (default {!no_retry}), an attempt that fails with
    {e transient} exhaustion — [Budget_exhausted] on the steps or size of
    its own sub-budget, never on the shared wall clock — is retried up to
    [max_retries] times under sub-budgets whose step/size limits escalate
    exponentially by [escalation] per trial.  A retry never starts once the
    request's wall deadline has passed, so the total time stays bounded by
    the deadline plus the granularity of one in-flight attempt's budget
    check.  Every trial appears in [attempts] with its [trial] number.

    Each attempt is additionally bracketed by an [omq.attempt] telemetry
    span (with [algorithm] and, on retries, [trial] attributes) when a sink
    is installed. *)
