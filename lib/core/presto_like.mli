(** The flat tree-witness rewriting (Kikot, Kontchakov & Zakharyaschev,
    KR 2012), standing in for Presto in the paper's experiments: an NDL
    program with one auxiliary predicate per tree witness and one goal clause
    per independent (atom-disjoint) set of tree witnesses.

    Its size is exponential in the number of compatible tree witnesses, but
    with a smaller base than PerfectRef — reproducing the middle column of
    Fig. 2 / Table 1. *)

open Obda_ontology
open Obda_cq

exception Limit_reached

val rewrite :
  ?budget:Obda_runtime.Budget.t ->
  ?max_subsets:int ->
  Tbox.t ->
  Cq.t ->
  Obda_ndl.Ndl.query
(** Raises [Limit_reached] when more than [max_subsets] independent
    tree-witness sets would be generated (default 100_000), and
    [Obda_runtime.Error.Obda_error (Budget_exhausted _)] when the given
    budget is spent first. *)
