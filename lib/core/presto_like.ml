open Obda_syntax
open Obda_ontology
open Obda_cq
open Obda_chase
module Ndl = Obda_ndl.Ndl
module Budget = Obda_runtime.Budget
module Fault = Obda_runtime.Fault
module Obs = Obda_obs.Obs

exception Limit_reached

let disjoint_atoms t1 t2 =
  not
    (List.exists
       (fun a -> List.exists (fun b -> Cq.compare_atom a b = 0) t2)
       t1)

(* all subsets of pairwise atom-disjoint witnesses *)
let independent_subsets ~budget ~limit witnesses =
  let count = ref 0 in
  let rec go chosen = function
    | [] ->
      incr count;
      Budget.step budget;
      if !count > limit then raise Limit_reached;
      [ chosen ]
    | (t : Tree_witness.t) :: rest ->
      let without = go chosen rest in
      if List.for_all (fun t' -> disjoint_atoms t.atoms t'.Tree_witness.atoms) chosen
      then go (t :: chosen) rest @ without
      else without
  in
  go [] witnesses

let rewrite ?(budget = Budget.none) ?(max_subsets = 100_000) tbox q =
  Obs.with_span "rewrite.presto" (fun () ->
  let witnesses =
    Tree_witness.enumerate tbox q
    |> List.filter (fun (t : Tree_witness.t) -> t.roots <> [])
  in
  let goal = Symbol.fresh "GPresto" in
  let goal_args = Cq.answer_vars q in
  let params = ref (Symbol.Map.singleton goal (List.length goal_args)) in
  let clauses = ref [] in
  let emit c =
    Fault.hit Fault.rewrite_presto_emit;
    Obs.incr "ndl.clauses_emitted";
    Obs.count "ndl.atoms_emitted" (1 + List.length c.Ndl.body);
    clauses := c :: !clauses
  in
  (* one auxiliary predicate per witness *)
  let tw_pred =
    List.mapi
      (fun i (t : Tree_witness.t) ->
        let p = Symbol.fresh (Printf.sprintf "TW%d" i) in
        params := Symbol.Map.add p 0 !params;
        let head = (p, List.map (fun v -> Ndl.Var v) t.roots) in
        let z0 = List.hd t.roots in
        let eqs =
          List.map (fun z -> Ndl.Eq (Ndl.Var z, Ndl.Var z0)) (List.tl t.roots)
        in
        List.iter
          (fun rho ->
            let arho = Tbox.exists_name tbox rho in
            emit { Ndl.head; body = Ndl.Pred (arho, [ Ndl.Var z0 ]) :: eqs })
          t.generators;
        (t, p))
      witnesses
  in
  (* a Boolean query may map entirely into the anonymous part: one clause
     per unary predicate whose single assertion entails the query *)
  if Cq.is_boolean q then begin
    let candidates =
      Tbox.concept_names tbox
      @ List.filter_map
          (function Cq.Unary (a, _) -> Some a | Cq.Binary _ -> None)
          (Cq.atoms q)
      |> List.sort_uniq Symbol.compare
    in
    List.iter
      (fun a ->
        if Certain.entailed_from_concept tbox (Concept.Name a) q then
          emit
            { Ndl.head = (goal, []); body = [ Ndl.Pred (a, [ Ndl.Var "u" ]) ] })
      candidates
  end;
  (* one goal clause per independent set of witnesses *)
  let subsets = independent_subsets ~budget ~limit:max_subsets witnesses in
  List.iter
    (fun subset ->
      Budget.grow budget;
      let covered =
        List.concat_map (fun (t : Tree_witness.t) -> t.atoms) subset
      in
      let rest =
        List.filter
          (fun a -> not (List.exists (fun b -> Cq.compare_atom a b = 0) covered))
          (Cq.atoms q)
      in
      let rest_atoms =
        List.map
          (function
            | Cq.Unary (a, z) -> Ndl.Pred (a, [ Ndl.Var z ])
            | Cq.Binary (p, y, z) -> Ndl.Pred (p, [ Ndl.Var y; Ndl.Var z ]))
          rest
      in
      let tw_atoms =
        List.map
          (fun (t : Tree_witness.t) ->
            let p = List.assq t tw_pred in
            Ndl.Pred (p, List.map (fun v -> Ndl.Var v) t.roots))
          subset
      in
      let body = rest_atoms @ tw_atoms in
      let body_vars = List.concat_map Ndl.atom_vars body in
      let missing =
        List.filter_map
          (fun v ->
            if List.mem v body_vars then None else Some (Ndl.Dom (Ndl.Var v)))
          goal_args
      in
      emit
        {
          Ndl.head = (goal, List.map (fun v -> Ndl.Var v) goal_args);
          body = body @ missing;
        })
    subsets;
  Ndl.observe (Ndl.make ~params:!params ~goal ~goal_args (List.rev !clauses)))
