open Obda_syntax
open Obda_ontology
open Obda_cq
open Obda_chase
module Ndl = Obda_ndl.Ndl
module Budget = Obda_runtime.Budget
module Fault = Obda_runtime.Fault
module Error = Obda_runtime.Error
module Obs = Obda_obs.Obs
module CqMap = Map.Make (Cq)

type state = {
  tbox : Tbox.t;
  x0 : Cq.var list;  (* the answer variables of the original OMQ *)
  budget : Budget.t;
  mutable preds : Symbol.t CqMap.t;
  mutable clauses : Ndl.clause list;
  mutable params : int Symbol.Map.t;
  mutable counter : int;
}

let fresh_pred st =
  st.counter <- st.counter + 1;
  Symbol.fresh (Printf.sprintf "Gtw%d" st.counter)

(* Head/argument convention: the answer variables of a subquery, with the
   parameters (variables of x0) in trailing positions. *)
let args_of st q =
  let xs = Cq.answer_vars q in
  let ps, nps = List.partition (fun v -> List.mem v st.x0) xs in
  (nps @ ps, List.length ps)

let emit st c =
  Fault.hit Fault.rewrite_tw_emit;
  Budget.step st.budget;
  Budget.grow ~by:(1 + List.length c.Ndl.body) st.budget;
  Obs.incr "ndl.clauses_emitted";
  Obs.count "ndl.atoms_emitted" (1 + List.length c.Ndl.body);
  st.clauses <- c :: st.clauses

(* the splitting vertex z_q: a balancing existential variable (Lemma 14,
   restricted to existential candidates so that recursion always shrinks) *)
let splitting_var q =
  let g = Cq.gaifman q in
  let all = Cq.vars q in
  let candidates = Cq.existential_vars q in
  let comp_score v =
    let rest = List.filter (fun u -> u <> v) all in
    let rest_idx = List.map (Cq.var_index q) rest in
    List.fold_left
      (fun acc comp -> max acc (List.length comp))
      0
      (Ugraph.components_within g rest_idx)
  in
  match candidates with
  | [] -> invalid_arg "Tw_rewriter.splitting_var: no existential variable"
  | v0 :: _ ->
    List.fold_left
      (fun (bv, bs) v ->
        let s = comp_score v in
        if s < bs then (v, s) else (bv, bs))
      (v0, comp_score v0)
      candidates
    |> fst

let unary_pred_candidates st q =
  let from_tbox = Tbox.concept_names st.tbox in
  let from_q =
    List.filter_map
      (function Cq.Unary (a, _) -> Some a | Cq.Binary _ -> None)
      (Cq.atoms q)
  in
  List.sort_uniq Symbol.compare (from_tbox @ from_q)

let rec pred_for st q =
  match CqMap.find_opt q st.preds with
  | Some p -> p
  | None ->
    let p = fresh_pred st in
    st.preds <- CqMap.add q p st.preds;
    build st q p;
    p

and build st q p =
  let args, nparams = args_of st q in
  st.params <- Symbol.Map.add p nparams st.params;
  let head = (p, List.map (fun v -> Ndl.Var v) args) in
  if Cq.existential_vars q = [] then
    (* no existential variables: evaluate the atoms directly *)
    emit st
      {
        Ndl.head;
        body =
          List.map
            (fun atom ->
              match atom with
              | Cq.Unary (a, z) -> Ndl.Pred (a, [ Ndl.Var z ])
              | Cq.Binary (b, y, z) -> Ndl.Pred (b, [ Ndl.Var y; Ndl.Var z ]))
            (Cq.atoms q);
      }
  else begin
    let zq = splitting_var q in
    let x = Cq.answer_vars q in
    (* --- clause mapping z_q to an individual --- *)
    let g = Cq.gaifman q in
    let rest =
      List.filter (fun v -> v <> zq) (Cq.vars q) |> List.map (Cq.var_index q)
    in
    let branches = Ugraph.components_within g rest in
    let sub_atom_calls =
      List.map
        (fun branch ->
          let branch_vars =
            List.map (Cq.var_of_index q) branch |> List.sort_uniq String.compare
          in
          let atoms_i =
            List.filter
              (fun atom ->
                List.exists (fun v -> List.mem v branch_vars) (Cq.atom_vars atom))
              (Cq.atoms q)
          in
          let qi = Cq.restrict_to q ~answer:(x @ [ zq ]) atoms_i in
          let pi = pred_for st qi in
          let args_i, _ = args_of st qi in
          Ndl.Pred (pi, List.map (fun v -> Ndl.Var v) args_i))
        branches
    in
    let zq_atoms =
      List.map (fun a -> Ndl.Pred (a, [ Ndl.Var zq ])) (Cq.unary_atoms_of q zq)
      @ List.map
          (fun b -> Ndl.Pred (b, [ Ndl.Var zq; Ndl.Var zq ]))
          (Cq.loop_atoms_of q zq)
    in
    let body1 = zq_atoms @ sub_atom_calls in
    let body1 = if body1 = [] then [ Ndl.Dom (Ndl.Var zq) ] else body1 in
    emit st { Ndl.head; body = body1 };
    (* --- clauses mapping z_q into the anonymous part, via tree witnesses --- *)
    let witnesses = Tree_witness.enumerate st.tbox q in
    List.iter
      (fun (t : Tree_witness.t) ->
        if t.roots <> [] && List.mem zq t.interior then begin
          let z0 = List.hd t.roots in
          let eqs =
            List.map (fun z -> Ndl.Eq (Ndl.Var z, Ndl.Var z0)) (List.tl t.roots)
          in
          let remaining =
            List.filter
              (fun atom -> not (List.mem atom t.atoms))
              (Cq.atoms q)
          in
          let component_calls =
            if remaining = [] then []
            else
              let answer =
                x @ List.filter (fun r -> not (List.mem r x)) t.roots
              in
              let rest_q = Cq.restrict_to q ~answer remaining in
              List.map
                (fun comp ->
                  let pc = pred_for st comp in
                  let args_c, _ = args_of st comp in
                  Ndl.Pred (pc, List.map (fun v -> Ndl.Var v) args_c))
                (Cq.connected_components rest_q)
          in
          List.iter
            (fun rho ->
              let arho = Tbox.exists_name st.tbox rho in
              emit st
                {
                  Ndl.head;
                  body =
                    (Ndl.Pred (arho, [ Ndl.Var z0 ]) :: eqs) @ component_calls;
                })
            t.generators
        end)
      witnesses;
    (* --- Boolean subqueries may map entirely into the anonymous part --- *)
    if x = [] then
      List.iter
        (fun a ->
          if Certain.entailed_from_concept st.tbox (Concept.Name a) q then
            emit st
              { Ndl.head = (p, []); body = [ Ndl.Pred (a, [ Ndl.Var "u" ]) ] })
        (unary_pred_candidates st q)
  end

let rewrite ?(budget = Budget.none) tbox q0 =
  Obs.with_span "rewrite.tw" (fun () ->
  let components = Cq.connected_components q0 in
  List.iter
    (fun c ->
      if not (Cq.is_tree_shaped c) then
        Error.not_applicable ~algorithm:"Tw" "CQ is not tree-shaped")
    components;
  let st =
    {
      tbox;
      x0 = Cq.answer_vars q0;
      budget;
      preds = CqMap.empty;
      clauses = [];
      params = Symbol.Map.empty;
      counter = 0;
    }
  in
  let goal = Symbol.fresh "GTw" in
  let calls =
    List.map
      (fun c ->
        let pc = pred_for st c in
        let args_c, _ = args_of st c in
        Ndl.Pred (pc, List.map (fun v -> Ndl.Var v) args_c))
      components
  in
  let goal_args = Cq.answer_vars q0 in
  emit st
    { Ndl.head = (goal, List.map (fun v -> Ndl.Var v) goal_args); body = calls };
  let params =
    Symbol.Map.add goal (List.length goal_args) st.params
  in
  Ndl.observe (Ndl.make ~params ~goal ~goal_args (List.rev st.clauses)))
