open Obda_syntax
open Obda_ontology
open Obda_cq
open Obda_data
module Obs = Obda_obs.Obs

exception Limit_reached

type formula =
  | Atom of Cq.atom
  | Equal of Cq.var * Cq.var
  | And of formula list
  | Or of formula list

let rec size = function
  | Atom _ | Equal _ -> 1
  | And fs | Or fs -> List.fold_left (fun acc f -> acc + size f) 1 fs

let rec pp ppf = function
  | Atom a -> Cq.pp_atom ppf a
  | Equal (y, z) -> Format.fprintf ppf "%s = %s" y z
  | And fs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
         pp)
      fs
  | Or fs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
         pp)
      fs

let rec matrix_depth = function
  | Atom _ | Equal _ -> 0
  | And fs | Or fs ->
    1 + List.fold_left (fun acc f -> max acc (matrix_depth f)) 0 fs

(* ------------------------------------------------------------------ *)
(* Construction: ⋁ over independent tree-witness sets *)

let disjoint_atoms t1 t2 =
  not
    (List.exists (fun a -> List.exists (fun b -> Cq.compare_atom a b = 0) t2) t1)

let independent_subsets ~limit witnesses =
  let count = ref 0 in
  let rec go chosen = function
    | [] ->
      incr count;
      if !count > limit then raise Limit_reached;
      [ chosen ]
    | (t : Tree_witness.t) :: rest ->
      let without = go chosen rest in
      if
        List.for_all
          (fun t' -> disjoint_atoms t.atoms t'.Tree_witness.atoms)
          chosen
      then go (t :: chosen) rest @ without
      else without
  in
  go [] witnesses

let tw_formula tbox (t : Tree_witness.t) =
  let z0 = List.hd t.roots in
  let eqs = List.map (fun z -> Equal (z, z0)) (List.tl t.roots) in
  Or
    (List.map
       (fun rho ->
         And (Atom (Cq.Unary (Tbox.exists_name tbox rho, z0)) :: eqs))
       t.generators)

let rewrite ?(max_subsets = 100_000) tbox q =
  Obs.with_span "rewrite.pe" (fun () ->
      let witnesses =
        Tree_witness.enumerate tbox q
        |> List.filter (fun (t : Tree_witness.t) -> t.roots <> [])
      in
      let subsets = independent_subsets ~limit:max_subsets witnesses in
      let disjuncts =
        List.map
          (fun subset ->
            let covered =
              List.concat_map (fun (t : Tree_witness.t) -> t.atoms) subset
            in
            let rest =
              List.filter
                (fun a ->
                  not (List.exists (fun b -> Cq.compare_atom a b = 0) covered))
                (Cq.atoms q)
            in
            And
              (List.map (fun a -> Atom a) rest
              @ List.map (tw_formula tbox) subset))
          subsets
      in
      let formula = Or disjuncts in
      if Obs.enabled () then begin
        Obs.set_int "pe.size" (size formula);
        Obs.set_int "pe.depth" (matrix_depth formula)
      end;
      formula)

(* ------------------------------------------------------------------ *)
(* Evaluation over completed instances (for testing) *)

type env = (Cq.var * Abox.const) list

let rec sat abox (env : env) formula : env Seq.t =
  match formula with
  | Atom (Cq.Unary (a, z)) -> (
    match List.assoc_opt z env with
    | Some c -> if Abox.mem_unary abox a c then Seq.return env else Seq.empty
    | None ->
      List.to_seq (Abox.unary_members abox a) |> Seq.map (fun c -> (z, c) :: env))
  | Atom (Cq.Binary (p, y, z)) -> (
    match (List.assoc_opt y env, List.assoc_opt z env) with
    | Some c, Some d ->
      if Abox.mem_binary abox p c d then Seq.return env else Seq.empty
    | Some c, None ->
      List.to_seq (Abox.successors abox p c)
      |> Seq.filter_map (fun d ->
             if y = z then if c = d then Some env else None
             else Some ((z, d) :: env))
    | None, Some d ->
      List.to_seq (Abox.predecessors abox p d) |> Seq.map (fun c -> (y, c) :: env)
    | None, None ->
      List.to_seq (Abox.binary_members abox p)
      |> Seq.filter_map (fun (c, d) ->
             if y = z then if c = d then Some ((y, c) :: env) else None
             else Some ((y, c) :: (z, d) :: env)))
  | Equal (y, z) -> (
    match (List.assoc_opt y env, List.assoc_opt z env) with
    | Some c, Some d -> if c = d then Seq.return env else Seq.empty
    | Some c, None -> Seq.return ((z, c) :: env)
    | None, Some d -> Seq.return ((y, d) :: env)
    | None, None ->
      List.to_seq (Abox.individuals abox)
      |> Seq.map (fun c -> (y, c) :: (z, c) :: env))
  | And [] -> Seq.return env
  | And fs ->
    (* prefer conjuncts with bound variables *)
    let bound_score f =
      match f with
      | Atom a ->
        List.length
          (List.filter (fun v -> List.mem_assoc v env) (Cq.atom_vars a))
      | Equal (y, z) ->
        List.length (List.filter (fun v -> List.mem_assoc v env) [ y; z ])
      | And _ | Or _ -> 0
    in
    let best =
      List.fold_left
        (fun acc f ->
          match acc with
          | None -> Some f
          | Some g -> if bound_score f > bound_score g then Some f else acc)
        None fs
    in
    let f = match best with Some f -> f | None -> assert false in
    let rest = List.filter (fun g -> g != f) fs in
    Seq.concat_map (fun env' -> sat abox env' (And rest)) (sat abox env f)
  | Or fs -> Seq.concat_map (fun f -> sat abox env f) (List.to_seq fs)

let certain_answers tbox q formula abox =
  let completed = Abox.complete tbox abox in
  let inds = Abox.individuals completed in
  let answer = Cq.answer_vars q in
  let tuples = Hashtbl.create 16 in
  Seq.iter
    (fun env ->
      let rec expand acc = function
        | [] -> Hashtbl.replace tuples (List.rev acc) ()
        | v :: rest -> (
          match List.assoc_opt v env with
          | Some c -> expand (c :: acc) rest
          | None -> List.iter (fun c -> expand (c :: acc) rest) inds)
      in
      expand [] answer)
    (sat completed [] formula);
  Hashtbl.fold (fun t () acc -> t :: acc) tuples []
  |> List.sort (List.compare Symbol.compare)
