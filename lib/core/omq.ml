open Obda_syntax
open Obda_ontology
open Obda_cq
open Obda_data
open Obda_chase
module Ndl = Obda_ndl.Ndl
module Eval = Obda_ndl.Eval
module Star = Obda_ndl.Star
module Budget = Obda_runtime.Budget
module Error = Obda_runtime.Error
module Obs = Obda_obs.Obs

type t = { tbox : Tbox.t; cq : Cq.t }

let make tbox cq = { tbox; cq }

type algorithm = Tw | Lin | Log | Ucq | Ucq_condensed | Presto_like

let all_algorithms = [ Tw; Lin; Log; Ucq; Ucq_condensed; Presto_like ]

let algorithm_name = function
  | Tw -> "Tw"
  | Lin -> "Lin"
  | Log -> "Log"
  | Ucq -> "Clipper*(UCQ)"
  | Ucq_condensed -> "Rapid*(UCQ)"
  | Presto_like -> "Presto*(TW)"

let algorithm_of_string s =
  match String.lowercase_ascii s with
  | "tw" -> Some Tw
  | "lin" -> Some Lin
  | "log" -> Some Log
  | "ucq" | "clipper" -> Some Ucq
  | "ucq-condensed" | "rapid" -> Some Ucq_condensed
  | "presto" | "flat-tw" -> Some Presto_like
  | _ -> None

let finite_depth omq =
  match Tbox.depth omq.tbox with Tbox.Finite _ -> true | Tbox.Infinite -> false

(* a forest counts: disconnected CQs are rewritten component-by-component *)
let forest omq =
  List.for_all Cq.is_tree_shaped (Cq.connected_components omq.cq)

let applicable alg omq =
  match alg with
  | Tw -> forest omq
  | Lin -> forest omq && finite_depth omq
  | Log -> finite_depth omq
  | Ucq | Ucq_condensed -> true
  | Presto_like -> forest omq

type classification = {
  ontology_depth : Tbox.depth;
  treewidth : int;
  tree_shaped : bool;
  leaves : int option;
  linear : bool;
  classes : string list;
}

let classify omq =
  let d = Tbox.depth omq.tbox in
  let tree_shaped = Cq.is_tree_shaped omq.cq in
  let tw = Tree_decomposition.treewidth_upper_bound omq.cq in
  let leaves = if tree_shaped then Some (Cq.num_leaves omq.cq) else None in
  let linear = Cq.is_linear omq.cq in
  let classes =
    let depth_str =
      match d with Tbox.Finite d -> string_of_int d | Tbox.Infinite -> "inf"
    in
    let base =
      match d with
      | Tbox.Finite _ -> [ Printf.sprintf "OMQ(%s,%d,inf)" depth_str tw ]
      | Tbox.Infinite -> []
    in
    let tree_classes =
      match (leaves, d) with
      | Some l, Tbox.Finite _ ->
        [
          Printf.sprintf "OMQ(%s,1,%d)" depth_str l;
          Printf.sprintf "OMQ(inf,1,%d)" l;
        ]
      | Some l, Tbox.Infinite -> [ Printf.sprintf "OMQ(inf,1,%d)" l ]
      | None, _ -> []
    in
    base @ tree_classes
  in
  { ontology_depth = d; treewidth = tw; tree_shaped; leaves; linear; classes }

let pp_classification ppf c =
  Format.fprintf ppf
    "depth=%a treewidth<=%d tree=%b leaves=%s linear=%b classes={%s}"
    Tbox.pp_depth c.ontology_depth c.treewidth c.tree_shaped
    (match c.leaves with Some l -> string_of_int l | None -> "-")
    c.linear
    (String.concat ", " c.classes)

(* rewrite each connected component and conjoin the goals *)
let componentwise rewrite_one omq =
  let components = Cq.connected_components omq.cq in
  match components with
  | [ _ ] -> rewrite_one omq.cq
  | comps ->
    let sub = List.map (fun c -> (c, rewrite_one c)) comps in
    let goal = Symbol.fresh "GAnd" in
    let goal_args = Cq.answer_vars omq.cq in
    let body =
      List.map
        (fun ((c : Cq.t), (sq : Ndl.query)) ->
          ignore c;
          Ndl.Pred (sq.Ndl.goal, List.map (fun v -> Ndl.Var v) sq.Ndl.goal_args))
        sub
    in
    let clauses =
      {
        Ndl.head = (goal, List.map (fun v -> Ndl.Var v) goal_args);
        body;
      }
      :: List.concat_map (fun (_, (sq : Ndl.query)) -> sq.Ndl.clauses) sub
    in
    let params =
      List.fold_left
        (fun acc (_, (sq : Ndl.query)) ->
          Symbol.Map.union (fun _ a _ -> Some a) acc sq.Ndl.params)
        (Symbol.Map.singleton goal (List.length goal_args))
        sub
    in
    Ndl.make ~params ~goal ~goal_args clauses

let rewrite ?budget ?(over = `Arbitrary) ?(consistency = false) alg omq =
  Obs.with_span "rewrite"
    ~attrs:
      [
        ("algorithm", algorithm_name alg);
        ("over", match over with `Complete -> "complete" | `Arbitrary -> "arbitrary");
      ]
  @@ fun () ->
  let base =
    match (alg, over) with
    | (Ucq | Ucq_condensed), _ ->
      (* PerfectRef rewrites over arbitrary instances natively *)
      if alg = Ucq then Ucq_rewriter.rewrite ?budget omq.tbox omq.cq
      else Ucq_rewriter.rewrite_condensed ?budget omq.tbox omq.cq
    | Tw, `Complete -> componentwise (Tw_rewriter.rewrite ?budget omq.tbox) omq
    | Lin, `Complete -> componentwise (Lin_rewriter.rewrite ?budget omq.tbox) omq
    | Log, `Complete -> componentwise (Log_rewriter.rewrite ?budget omq.tbox) omq
    | Presto_like, `Complete ->
      componentwise (Presto_like.rewrite ?budget omq.tbox) omq
    | Lin, `Arbitrary ->
      (* Lemma 3 preserves linearity per component; the conjunction clause
         joining the components is IDB-only, so it needs no transformation *)
      componentwise
        (fun c ->
          Star.complete_to_arbitrary_linear omq.tbox
            (Lin_rewriter.rewrite ?budget omq.tbox c))
        omq
    | Tw, `Arbitrary ->
      Star.complete_to_arbitrary omq.tbox
        (componentwise (Tw_rewriter.rewrite ?budget omq.tbox) omq)
    | Log, `Arbitrary ->
      Star.complete_to_arbitrary omq.tbox
        (componentwise (Log_rewriter.rewrite ?budget omq.tbox) omq)
    | Presto_like, `Arbitrary ->
      Star.complete_to_arbitrary omq.tbox
        (componentwise (Presto_like.rewrite ?budget omq.tbox) omq)
  in
  Ndl.observe
    (if consistency && over = `Arbitrary then
       Consistency.guard_rewriting omq.tbox base
     else base)

(* ------------------------------------------------------------------ *)
(* Content digests: the key of the service layer's rewriting cache.  Two
   OMQs with the same axioms (as multisets), the same CQ up to atom order
   and the same (algorithm, over) configuration share a rewriting, so the
   digest is computed over a canonical rendering: sorted axiom strings and
   sorted atom strings. *)

let digest ?(over = `Arbitrary) alg omq =
  let buf = Buffer.create 256 in
  let axiom_strings =
    List.sort String.compare
      (List.map (Format.asprintf "%a" Tbox.pp_axiom) (Tbox.axioms omq.tbox))
  in
  List.iter
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n')
    axiom_strings;
  Buffer.add_string buf "|q|";
  Buffer.add_string buf (String.concat "," (Cq.answer_vars omq.cq));
  Buffer.add_char buf '\n';
  let atom_strings =
    List.sort String.compare
      (List.map (Format.asprintf "%a" Cq.pp_atom) (Cq.atoms omq.cq))
  in
  List.iter
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n')
    atom_strings;
  Buffer.add_string buf "|alg|";
  Buffer.add_string buf (algorithm_name alg);
  Buffer.add_string buf
    (match over with `Complete -> "|complete" | `Arbitrary -> "|arbitrary");
  Digest.to_hex (Digest.string (Buffer.contents buf))

let all_tuples abox arity =
  let inds = Abox.individuals abox in
  let rec tuples n =
    if n = 0 then [ [] ]
    else
      let rest = tuples (n - 1) in
      List.concat_map (fun c -> List.map (fun t -> c :: t) rest) inds
  in
  tuples arity

let default_algorithm omq = if Cq.is_tree_shaped omq.cq then Tw else Log

let inconsistent_answers ~on_inconsistent omq abox =
  match on_inconsistent with
  | `All_tuples -> all_tuples abox (List.length (Cq.answer_vars omq.cq))
  | `Error ->
    raise
      (Error.Obda_error
         (Error.Inconsistent_data
            { reason = "the data violates a disjointness axiom of the ontology" }))

(* The consistency pre-check is itself a chase over the completed data, so
   it gets its own span in the request trace.  Its verdict only depends on
   (T, A), so it is memoised against the instance's revision counter:
   repeated [answer] calls over unchanged data — the prepare-once /
   answer-many shape of the service layer — run the check exactly once.
   One slot suffices because the hot pattern is many answers against one
   resident instance; an interleaving of instances merely re-checks. *)
let consistency_memo : (Tbox.t * Abox.t * int * bool) option ref = ref None

let consistent omq abox =
  let rev = Abox.revision abox in
  match !consistency_memo with
  | Some (t, a, r, c) when t == omq.tbox && a == abox && r = rev -> c
  | _ ->
    let c =
      Obs.with_span "chase.consistency" (fun () -> Abox.consistent omq.tbox abox)
    in
    consistency_memo := Some (omq.tbox, abox, rev, c);
    c

let answer_assuming_consistent ?pool ?budget ?plan ?naive ?algorithm omq abox =
  let alg =
    match algorithm with Some a -> a | None -> default_algorithm omq
  in
  let q = rewrite ?budget ~over:`Arbitrary alg omq in
  Eval.answers ?pool ?budget ?plan ?naive q abox

let answer ?pool ?budget ?plan ?naive ?(on_inconsistent = `All_tuples)
    ?algorithm omq abox =
  if not (consistent omq abox) then
    inconsistent_answers ~on_inconsistent omq abox
  else answer_assuming_consistent ?pool ?budget ?plan ?naive ?algorithm omq abox

let explain ?budget ?naive ?algorithm omq abox =
  let alg =
    match algorithm with Some a -> a | None -> default_algorithm omq
  in
  let q = rewrite ?budget ~over:`Arbitrary alg omq in
  Eval.explain ?naive q abox

let answer_certain ?budget ?(on_inconsistent = `All_tuples) omq abox =
  if not (consistent omq abox) then
    inconsistent_answers ~on_inconsistent omq abox
  else Certain.answers ?budget omq.tbox abox omq.cq

(* ------------------------------------------------------------------ *)
(* Graceful degradation: an ordered chain of algorithms, each tried under a
   fresh step/size budget (the wall-clock deadline is shared), falling
   through on Not_applicable and Budget_exhausted. *)

type attempt = {
  algorithm : algorithm;
  trial : int;
  outcome : (unit, Error.t) result;
  duration : float;
}

type fallback_answer = {
  answers : Symbol.t list list;
  answered_by : algorithm option;
      (** [None] when the inconsistency convention produced the answers
          without running any rewriting *)
  attempts : attempt list;  (** every attempt, in chain order *)
}

type retry = { max_retries : int; escalation : float }

let no_retry = { max_retries = 0; escalation = 2. }
let default_retry = { max_retries = 2; escalation = 2. }

(* only step/size exhaustion is transient: escalating the sub-budget can
   help, whereas a blown wall deadline or a wrong-shaped OMQ cannot change *)
let transient = function
  | Error.Budget_exhausted { resource = Error.Steps | Error.Size; _ } -> true
  | _ -> false

let default_chain preferred =
  let tail =
    List.filter
      (fun a -> a <> preferred)
      [ Presto_like; Ucq_condensed; Ucq ]
  in
  preferred :: tail

let answer_with_fallback ?pool ?(budget = Budget.none) ?(retry = no_retry)
    ?chain ?(on_inconsistent = `All_tuples) omq abox =
  let chain =
    match chain with
    | Some c ->
      if c = [] then invalid_arg "Omq.answer_with_fallback: empty chain";
      c
    | None -> default_chain (default_algorithm omq)
  in
  if not (consistent omq abox) then
    {
      answers = inconsistent_answers ~on_inconsistent omq abox;
      answered_by = None;
      attempts = [];
    }
  else
    let rec try_chain attempts = function
      | [] ->
        (* every algorithm failed: re-raise the last error *)
        (match attempts with
        | { outcome = Error error; _ } :: _ -> raise (Error.Obda_error error)
        | _ -> assert false)
      | alg :: rest ->
        (* a fresh step/size allowance per attempt; the deadline is shared,
           so neither falling back nor retrying ever extends the request's
           total time budget *)
        let rec run_trial trial factor attempts =
          let b =
            if factor = 1. then Budget.sub budget
            else Budget.sub_scaled ~factor budget
          in
          let t0 = Unix.gettimeofday () in
          let finish outcome =
            {
              algorithm = alg;
              trial;
              outcome;
              duration = Unix.gettimeofday () -. t0;
            }
          in
          let attrs =
            ("algorithm", algorithm_name alg)
            ::
            (if trial > 1 then [ ("trial", string_of_int trial) ] else [])
          in
          match
            Obs.with_span "omq.attempt" ~attrs (fun () ->
                if not (applicable alg omq) then
                  Error.not_applicable ~algorithm:(algorithm_name alg)
                    "side conditions do not hold for this OMQ"
                else
                  let q = rewrite ~budget:b ~over:`Arbitrary alg omq in
                  Eval.answers ?pool ~budget:b q abox)
          with
          | answers ->
            {
              answers;
              answered_by = Some alg;
              attempts = List.rev (finish (Ok ()) :: attempts);
            }
          | exception
              Error.Obda_error
                ((Error.Not_applicable _ | Error.Budget_exhausted _) as error)
            ->
            let attempts = finish (Error error) :: attempts in
            (* retry the same algorithm under an escalated sub-budget — but
               only for transient exhaustion, and never once the request's
               wall deadline has passed *)
            if
              transient error
              && trial <= retry.max_retries
              && not (Budget.wall_exhausted budget)
            then run_trial (trial + 1) (factor *. retry.escalation) attempts
            else try_chain attempts rest
        in
        run_trial 1 1. attempts
    in
    try_chain [] chain
