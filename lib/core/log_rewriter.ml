open Obda_syntax
open Obda_ontology
open Obda_cq
module Ndl = Obda_ndl.Ndl
module Optimize = Obda_ndl.Optimize
module Budget = Obda_runtime.Budget
module Fault = Obda_runtime.Fault
module Error = Obda_runtime.Error
module Obs = Obda_obs.Obs

let type_guard = 100_000

module VarSet = Set.Make (String)

type ctx = {
  tbox : Tbox.t;
  q : Cq.t;
  dec : Tree_decomposition.t;
  cands : Word_type.word list;
  x : Cq.var list;
  budget : Budget.t;
  (* atom index -> bags covering it *)
  coverage : int list array;
  atoms : Cq.atom array;
  mutable clauses : Ndl.clause list;
  mutable params : int Symbol.Map.t;
  memo :
    (int list * (Cq.var * Word_type.word) list, (Symbol.t * Cq.var list) option)
    Hashtbl.t;
  mutable counter : int;
}

let bag ctx t = ctx.dec.Tree_decomposition.bags.(t)
let tree ctx = ctx.dec.Tree_decomposition.tree

(* variables shared between D and its outside neighbours: ∂D *)
let boundary_vars ctx d =
  let in_d t = List.mem t d in
  List.fold_left
    (fun acc t ->
      List.fold_left
        (fun acc t' ->
          if in_d t' then acc
          else
            List.fold_left
              (fun acc v -> if List.mem v (bag ctx t') then VarSet.add v acc else acc)
              acc (bag ctx t))
        acc
        (Ugraph.neighbours (tree ctx) t))
    VarSet.empty d
  |> VarSet.elements

let boundary_nodes ctx d =
  List.filter
    (fun t ->
      List.exists (fun t' -> not (List.mem t' d)) (Ugraph.neighbours (tree ctx) t))
    d

(* answer variables of the atoms covered by a bag in D *)
let x_of ctx d =
  let covered = Hashtbl.create 16 in
  Array.iteri
    (fun i bags ->
      if List.exists (fun t -> List.mem t d) bags then
        List.iter
          (fun v -> Hashtbl.replace covered v ())
          (Cq.atom_vars ctx.atoms.(i)))
    ctx.coverage;
  List.filter (Hashtbl.mem covered) ctx.x

(* the splitting node of Lemma 10 *)
let splitter ctx d =
  match d with
  | [ t ] -> t
  | _ -> (
    match boundary_nodes ctx d with
    | [] | [ _ ] -> Ugraph.centroid (tree ctx) d
    | b1 :: b2 :: _ ->
      (* pick a node on the b1–b2 path minimising the larger of the two
         boundary-containing components *)
      let path =
        match Ugraph.path (tree ctx) b1 b2 with
        | Some p -> List.filter (fun t -> List.mem t d) p
        | None -> d
      in
      let score t =
        let rest = List.filter (fun u -> u <> t) d in
        List.fold_left
          (fun acc comp ->
            if List.mem b1 comp || List.mem b2 comp then
              max acc (List.length comp)
            else acc)
          0
          (Ugraph.components_within (tree ctx) rest)
      in
      List.fold_left
        (fun (bt, bs) t ->
          let s = score t in
          if s < bs then (t, s) else (bt, bs))
        (List.hd path, score (List.hd path))
        path
      |> fst)

let emit ctx head body =
  Fault.hit Fault.rewrite_log_emit;
  Budget.step ctx.budget;
  Budget.grow ~by:(1 + List.length body) ctx.budget;
  Obs.incr "ndl.clauses_emitted";
  Obs.count "ndl.atoms_emitted" (1 + List.length body);
  let body_vars = List.concat_map Ndl.atom_vars body in
  let missing =
    List.filter_map
      (function
        | Ndl.Var v when not (List.mem v body_vars) -> Some (Ndl.Dom (Ndl.Var v))
        | Ndl.Var _ | Ndl.Cst _ -> None)
      (snd head)
    |> List.sort_uniq compare
  in
  ctx.clauses <- { Ndl.head; body = body @ missing } :: ctx.clauses

(* enumerate the types s over the bag of the splitting node, agreeing with
   the ambient type [w] and compatible with the bag *)
let bag_types ctx w bag_vars =
  let free = List.filter (fun v -> not (Cq.Var_map.mem v w)) bag_vars in
  let per_var =
    List.map
      (fun z -> (z, List.filter (Word_type.locally_ok ctx.tbox ctx.q z) ctx.cands))
      free
  in
  let count =
    List.fold_left (fun acc (_, l) -> acc * max 1 (List.length l)) 1 per_var
  in
  if count > type_guard then
    Error.not_applicable ~algorithm:"Log"
      "bag type space exceeds %d (ontology too deep for this CQ)" type_guard;
  let fixed =
    List.fold_left
      (fun acc v ->
        match Cq.Var_map.find_opt v w with
        | Some word -> Cq.Var_map.add v word acc
        | None -> acc)
      Cq.Var_map.empty bag_vars
  in
  let rec product acc = function
    | [] -> [ acc ]
    | (z, ws) :: rest ->
      List.concat_map (fun word -> product (Cq.Var_map.add z word acc) rest) ws
  in
  product fixed per_var
  |> List.filter (fun s -> Word_type.compatible_on ctx.tbox ctx.q bag_vars s)

let restrict_type ty vars =
  List.fold_left
    (fun acc v ->
      match Cq.Var_map.find_opt v ty with
      | Some w -> Cq.Var_map.add v w acc
      | None -> acc)
    Cq.Var_map.empty vars

let memo_key d w =
  (d, Cq.Var_map.bindings w)

(* returns the predicate (with its argument variables) for (D, w), or None
   when no clause for it can fire *)
let rec pred_for ctx d w =
  let key = memo_key d w in
  match Hashtbl.find_opt ctx.memo key with
  | Some r -> r
  | None ->
    (* break potential re-entry (cannot happen: strictly decreasing D) *)
    let boundary = boundary_vars ctx d in
    let xd = x_of ctx d in
    let args = boundary @ xd in
    ctx.counter <- ctx.counter + 1;
    let p = Symbol.fresh (Printf.sprintf "Glog%d" ctx.counter) in
    let sigma = splitter ctx d in
    let bag_vars = bag ctx sigma in
    let children =
      Ugraph.components_within (tree ctx)
        (List.filter (fun t -> t <> sigma) d)
    in
    let head = (p, List.map (fun v -> Ndl.Var v) args) in
    let made = ref false in
    List.iter
      (fun s ->
        Budget.step ctx.budget;
        let union = Cq.Var_map.union (fun _ a _ -> Some a) s w in
        (* one body per child subtree, if all children are productive *)
        let rec child_calls acc = function
          | [] -> Some (List.rev acc)
          | d' :: rest -> (
            let w' = restrict_type union (boundary_vars ctx d') in
            match pred_for ctx d' w' with
            | None -> None
            | Some (p', args') ->
              child_calls
                (Ndl.Pred (p', List.map (fun v -> Ndl.Var v) args') :: acc)
                rest)
        in
        match child_calls [] children with
        | None -> ()
        | Some calls ->
          let at =
            Word_type.at_atoms ctx.tbox ctx.q ~scope:bag_vars
              ~emit_for:(fun _ -> true)
              s
          in
          made := true;
          emit ctx head (at @ calls))
      (bag_types ctx w bag_vars);
    let result = if !made then Some (p, args) else None in
    Hashtbl.replace ctx.memo key result;
    if !made then ctx.params <- Symbol.Map.add p (List.length xd) ctx.params;
    result

let rewrite ?(budget = Budget.none) ?decomposition tbox q =
  Obs.with_span "rewrite.log" (fun () ->
  if not (Cq.is_connected q) then
    Error.not_applicable ~algorithm:"Log" "CQ must be connected";
  let d_depth =
    match Tbox.depth tbox with
    | Tbox.Finite d -> d
    | Tbox.Infinite ->
      Error.not_applicable ~algorithm:"Log" "ontology of infinite depth"
  in
  let dec =
    match decomposition with
    | Some d -> d
    | None -> Tree_decomposition.of_cq q
  in
  let atoms = Array.of_list (Cq.atoms q) in
  let coverage =
    Array.map
      (fun atom ->
        let vars = Cq.atom_vars atom in
        List.filteri (fun _ _ -> true)
          (List.init (Array.length dec.Tree_decomposition.bags) Fun.id)
        |> List.filter (fun t ->
               List.for_all
                 (fun v -> List.mem v dec.Tree_decomposition.bags.(t))
                 vars))
      atoms
  in
  Array.iteri
    (fun i bags ->
      if bags = [] then
        Format.kasprintf invalid_arg
          "Log_rewriter.rewrite: atom %a not covered by the decomposition"
          Cq.pp_atom atoms.(i))
    coverage;
  let ctx =
    {
      tbox;
      q;
      dec;
      cands = Word_type.candidates tbox ~max_depth:d_depth;
      x = Cq.answer_vars q;
      budget;
      coverage;
      atoms;
      clauses = [];
      params = Symbol.Map.empty;
      memo = Hashtbl.create 64;
      counter = 0;
    }
  in
  let all_nodes = List.init (Array.length dec.Tree_decomposition.bags) Fun.id in
  let goal = Symbol.fresh "GLog" in
  let goal_args = Cq.answer_vars q in
  (match pred_for ctx all_nodes Cq.Var_map.empty with
  | Some (p, args) ->
    emit ctx
      (goal, List.map (fun v -> Ndl.Var v) goal_args)
      [ Ndl.Pred (p, List.map (fun v -> Ndl.Var v) args) ]
  | None -> ());
  let params = Symbol.Map.add goal (List.length goal_args) ctx.params in
  let query = Ndl.make ~params ~goal ~goal_args (List.rev ctx.clauses) in
  let idb = Ndl.idb_preds query in
  Ndl.observe (Optimize.prune ~edb:(fun p -> not (Symbol.Set.mem p idb)) query))
