(** The tree-witness NDL-rewriting Π^Tw of Section 3.4, for OMQs with
    tree-shaped CQs and ontologies of arbitrary (possibly infinite) depth.

    The CQ is recursively split at a balancing vertex (Lemma 14), producing
    subqueries for the neighbours of the splitting vertex and, for every tree
    witness whose interior contains it, for the connected components left
    after removing the witness.  The result is an NDL-rewriting over complete
    data instances, of polynomial size, logarithmic depth and width ≤ ℓ+1. *)

open Obda_ontology
open Obda_cq

val rewrite :
  ?budget:Obda_runtime.Budget.t -> Tbox.t -> Cq.t -> Obda_ndl.Ndl.query
(** Raises [Obda_runtime.Error.Obda_error (Not_applicable _)] if the CQ is
    not tree-shaped (after taking connected components; disconnected
    tree-shaped CQs are supported by conjoining component goals), and
    [Budget_exhausted] when clause generation outgrows [budget]. *)
