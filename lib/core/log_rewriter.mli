(** The logarithmic-depth NDL-rewriting Π^Log of Section 3.2, for OMQs with
    ontologies of finite depth and CQs of bounded treewidth.

    A tree decomposition of the CQ is split recursively at balancing nodes
    (Lemma 10); for every subtree D of the splitting family and every type w
    over its boundary variables ∂D, a predicate G_D^w is defined by one
    clause per compatible type s over the splitting bag.  The resulting
    program has width ≤ 3(t+1) and logarithmic skinny depth. *)

open Obda_ontology
open Obda_cq

val rewrite :
  ?budget:Obda_runtime.Budget.t ->
  ?decomposition:Tree_decomposition.t ->
  Tbox.t ->
  Cq.t ->
  Obda_ndl.Ndl.query
(** Raises [Obda_runtime.Error.Obda_error (Not_applicable _)] if the CQ is
    not connected, the ontology has infinite depth, or the bag type space is
    too large; [Budget_exhausted] when clause generation outgrows
    [budget]. *)
