(** A PerfectRef-style UCQ rewriter (Calvanese et al. 2007), standing in for
    the UCQ-based engines Rapid and Clipper of the paper's experiments
    (Section 6): it exhibits the same exponential behaviour on the
    OMQ(1,1,2) sequences.

    Starting from the input CQ, atoms are rewritten backwards through the
    (saturated) ontology axioms and unifiable atoms are merged (the "reduce"
    step) until a fixpoint; the result is returned as an NDL program with one
    clause per CQ.  The rewriting is over arbitrary data instances. *)

open Obda_ontology
open Obda_cq

exception Limit_reached

val rewrite_cqs :
  ?budget:Obda_runtime.Budget.t -> ?max_cqs:int -> Tbox.t -> Cq.t -> Cq.t list
(** The CQs of the UCQ-rewriting (the input CQ included) that have distinct
    answer variables; CQs where reduce unified two distinguished variables
    (they repeat a head variable) are only representable in the NDL form and
    are omitted here.  Raises [Limit_reached] beyond [max_cqs]
    (default 100_000). *)

val rewrite :
  ?budget:Obda_runtime.Budget.t ->
  ?max_cqs:int ->
  Tbox.t ->
  Cq.t ->
  Obda_ndl.Ndl.query
(** [rewrite_cqs] as an NDL query (the Clipper* baseline). *)

val rewrite_condensed :
  ?budget:Obda_runtime.Budget.t ->
  ?max_cqs:int ->
  Tbox.t ->
  Cq.t ->
  Obda_ndl.Ndl.query
(** Like [rewrite], but prunes CQs subsumed by another CQ of the union
    (the Rapid* baseline — Rapid performs similar minimisations). *)

val subsumes : Cq.t -> Cq.t -> bool
(** [subsumes q1 q2]: there is an answer-variable-preserving homomorphism
    from q1 into q2 (so q2's answers are contained in q1's). *)
