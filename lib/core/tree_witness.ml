open Obda_syntax
open Obda_ontology
open Obda_cq
open Obda_chase

type t = {
  roots : Cq.var list;
  interior : Cq.var list;
  atoms : Cq.atom list;
  generators : Role.t list;
}

let pp ppf t =
  Format.fprintf ppf "tw(roots={%s}, interior={%s}, gen={%s})"
    (String.concat "," t.roots)
    (String.concat "," t.interior)
    (String.concat "," (List.map Role.to_string t.generators))

(* the atoms of q with at least one variable in [interior] *)
let witness_atoms q interior =
  let mem v = List.mem v interior in
  List.filter
    (fun atom -> List.exists mem (Cq.atom_vars atom))
    (Cq.atoms q)

let neighbours_of_set q interior =
  let mem v = List.mem v interior in
  witness_atoms q interior
  |> List.concat_map Cq.atom_vars
  |> List.filter (fun v -> not (mem v))
  |> List.sort_uniq String.compare

let generators_of tbox q ~roots ~interior ~atoms =
  if atoms = [] then []
  else
    let qt =
      (* the subquery q_t, with no answer variables: pinning is done via the
         homomorphism constraints below *)
      Cq.restrict_to q ~answer:[] atoms
    in
    let depth = List.length interior + 1 in
    List.filter
      (fun rho ->
        match Tbox.exists_name_opt tbox rho with
        | None -> false
        | Some _ ->
          let canon = Canonical.of_concept tbox (Concept.Exists rho) ~depth in
          let root = Canonical.root_of_concept_model canon in
          let pin = List.map (fun v -> (v, root)) roots in
          let admissible v e =
            if List.mem v interior then
              match e with Canonical.Null _ -> true | Canonical.Ind _ -> false
            else true
          in
          Certain.find_hom ~pin ~admissible canon qt <> None)
      (Tbox.roles tbox)

let enumerate ?(limit = 100_000) tbox q =
  let g = Cq.gaifman q in
  let existential_indices =
    List.map (Cq.var_index q) (Cq.existential_vars q)
  in
  let candidate_sets = Ugraph.connected_subsets g existential_indices ~limit in
  let witnesses =
    List.filter_map
      (fun indices ->
        let interior =
          List.map (Cq.var_of_index q) indices |> List.sort String.compare
        in
        let roots = neighbours_of_set q interior in
        let atoms = witness_atoms q interior in
        match generators_of tbox q ~roots ~interior ~atoms with
        | [] -> None
        | generators -> Some { roots; interior; atoms; generators })
      candidate_sets
  in
  Obda_obs.Obs.count "rewrite.tree_witnesses" (List.length witnesses);
  witnesses
