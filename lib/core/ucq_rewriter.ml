open Obda_syntax
open Obda_ontology
open Obda_cq
module Ndl = Obda_ndl.Ndl
module Budget = Obda_runtime.Budget
module Fault = Obda_runtime.Fault
module Obs = Obda_obs.Obs

exception Limit_reached

(* Working representation: the head argument list (answer variables, with
   possible repetitions after distinguished-variable unification) and the
   atom list. *)
type wcq = { answer : Cq.var list; atoms : Cq.atom list }

let occurrences atoms z =
  List.fold_left
    (fun acc atom ->
      List.fold_left
        (fun acc v -> if v = z then acc + 1 else acc)
        acc
        (match atom with
        | Cq.Unary (_, v) -> [ v ]
        | Cq.Binary (_, y, v) -> [ y; v ]))
    0 atoms

let unbound w z = (not (List.mem z w.answer)) && occurrences w.atoms z = 1

let role_atom rho y z =
  if Role.is_inverse rho then Cq.Binary (rho.Role.base, z, y)
  else Cq.Binary (rho.Role.base, y, z)

(* canonical renaming of existential variables *)
let canonicalize w =
  let pass atoms =
    let mapping = Hashtbl.create 8 in
    let next = ref 0 in
    let rename v =
      if List.mem v w.answer then v
      else
        match Hashtbl.find_opt mapping v with
        | Some v' -> v'
        | None ->
          let v' = Printf.sprintf "_e%d" !next in
          incr next;
          Hashtbl.add mapping v v';
          v'
    in
    let atoms =
      List.map
        (function
          | Cq.Unary (a, z) -> Cq.Unary (a, rename z)
          | Cq.Binary (p, y, z) -> Cq.Binary (p, rename y, rename z))
        atoms
    in
    List.sort_uniq Cq.compare_atom atoms
  in
  (* two passes make the renaming stable for almost all shapes *)
  { w with atoms = pass (pass (List.sort_uniq Cq.compare_atom w.atoms)) }

let substitute w v v' =
  let s u = if u = v then v' else u in
  {
    answer = List.map s w.answer;
    atoms =
      List.sort_uniq Cq.compare_atom
        (List.map
           (function
             | Cq.Unary (a, z) -> Cq.Unary (a, s z)
             | Cq.Binary (p, y, z) -> Cq.Binary (p, s y, s z))
           w.atoms);
  }

(* one-step rewritings of a single atom through the (saturated) ontology *)
let atom_rewritings tbox counter w atom =
  let fresh () =
    incr counter;
    Printf.sprintf "_w%d" !counter
  in
  let others = List.filter (fun a -> Cq.compare_atom a atom <> 0) w.atoms in
  let with_atoms atoms = { w with atoms = atoms @ others } in
  match atom with
  | Cq.Unary (a, z) ->
    List.filter_map
      (fun sub ->
        match sub with
        | Concept.Name a' when not (Symbol.equal a' a) ->
          Some (with_atoms [ Cq.Unary (a', z) ])
        | Concept.Name _ | Concept.Top -> None
        | Concept.Exists rho -> Some (with_atoms [ role_atom rho z (fresh ()) ]))
      (Tbox.subconcepts_of tbox (Concept.Name a))
  | Cq.Binary (p, y, z) ->
    let rho = Role.make p in
    let by_role_inclusion =
      List.filter_map
        (fun sigma ->
          if Role.equal sigma rho then None
          else Some (with_atoms [ role_atom sigma y z ]))
        (Tbox.subroles_of tbox rho)
    in
    let eliminate direction var other =
      (* atom viewed as direction(other, var) with var unbound *)
      if y <> z && unbound w var then
        List.filter_map
          (fun sub ->
            match sub with
            | Concept.Name a' -> Some (with_atoms [ Cq.Unary (a', other) ])
            | Concept.Exists sigma when not (Role.equal sigma direction) ->
              Some (with_atoms [ role_atom sigma other (fresh ()) ])
            | Concept.Exists _ | Concept.Top -> None)
          (Tbox.subconcepts_of tbox (Concept.Exists direction))
      else []
    in
    let by_elim_z = eliminate rho z y in
    let by_elim_y = eliminate (Role.inv rho) y z in
    let by_reflexivity =
      if y <> z && Tbox.reflexive tbox rho then
        let candidate = substitute { w with atoms = others } z y in
        if candidate.atoms = [] then [] else [ candidate ]
      else []
    in
    by_role_inclusion @ by_elim_z @ by_elim_y @ by_reflexivity

(* the reduce step: unify pairs of atoms over the same predicate.
   Distinguished variables may be unified too (PerfectRef's reduce); the
   unified query then repeats an answer variable in the head. *)
let reductions w =
  let rec pairs acc = function
    | [] -> acc
    | a :: rest -> pairs (List.map (fun b -> (a, b)) rest @ acc) rest
  in
  let rec unify k = function
    | [] -> Some k
    | (u, v) :: rest ->
      if u = v then unify k rest
      else
        let keep, gone = if List.mem u k.answer then (u, v) else (v, u) in
        let rest' =
          List.map
            (fun (a, b) ->
              ((if a = gone then keep else a), if b = gone then keep else b))
            rest
        in
        unify (substitute k gone keep) rest'
  in
  List.filter_map
    (fun (a, b) ->
      match (a, b) with
      | Cq.Unary (pa, u), Cq.Unary (pb, v) when Symbol.equal pa pb ->
        unify w [ (u, v) ]
      | Cq.Binary (pa, u1, u2), Cq.Binary (pb, v1, v2) when Symbol.equal pa pb ->
        unify w [ (u1, v1); (u2, v2) ]
      | _ -> None)
    (pairs [] w.atoms)

let rewrite_wcqs ?(budget = Budget.none) ?(max_cqs = 100_000) tbox q =
  let counter = ref 0 in
  let seen = Hashtbl.create 256 in
  let out = ref [] in
  let queue = Queue.create () in
  let push w =
    let w = canonicalize w in
    if w.atoms <> [] && not (Hashtbl.mem seen w) then begin
      if Hashtbl.length seen >= max_cqs then raise Limit_reached;
      Budget.grow ~by:(List.length w.atoms) budget;
      Hashtbl.add seen w ();
      out := w :: !out;
      Queue.add w queue
    end
  in
  push { answer = Cq.answer_vars q; atoms = Cq.atoms q };
  while not (Queue.is_empty queue) do
    Budget.step budget;
    let w = Queue.pop queue in
    List.iter
      (fun atom -> List.iter push (atom_rewritings tbox counter w atom))
      w.atoms;
    List.iter push (reductions w)
  done;
  List.rev !out

let rewrite_cqs ?budget ?max_cqs tbox q =
  List.filter_map
    (fun w ->
      (* queries whose head repeats a variable have no Cq.t form *)
      let rec distinct = function
        | [] -> true
        | x :: rest -> (not (List.mem x rest)) && distinct rest
      in
      if distinct w.answer then Some (Cq.make ~answer:w.answer w.atoms)
      else None)
    (rewrite_wcqs ?budget ?max_cqs tbox q)

(* [site] distinguishes the plain and condensed variants in fault plans *)
let ndl_of_wcqs ~site q wcqs =
  let goal = Symbol.fresh "GUcq" in
  let goal_args = Cq.answer_vars q in
  let clauses =
    List.map
      (fun w ->
        Fault.hit site;
        Obs.incr "ndl.clauses_emitted";
        Obs.count "ndl.atoms_emitted" (1 + List.length w.atoms);
        {
          Ndl.head = (goal, List.map (fun v -> Ndl.Var v) w.answer);
          body =
            List.map
              (function
                | Cq.Unary (a, z) -> Ndl.Pred (a, [ Ndl.Var z ])
                | Cq.Binary (p, y, z) -> Ndl.Pred (p, [ Ndl.Var y; Ndl.Var z ]))
              w.atoms;
        })
      wcqs
  in
  let params = Symbol.Map.singleton goal (List.length goal_args) in
  Ndl.make ~params ~goal ~goal_args clauses

let rewrite ?budget ?max_cqs tbox q =
  Obs.with_span "rewrite.ucq" (fun () ->
      Ndl.observe
        (ndl_of_wcqs ~site:Fault.rewrite_ucq_emit q
           (rewrite_wcqs ?budget ?max_cqs tbox q)))

(* ------------------------------------------------------------------ *)
(* CQ subsumption *)

(* homomorphism (answer1, atoms1) → (answer2, atoms2), positional on the
   answer tuples *)
let subsumes_raw (answer1, atoms1) (answer2, atoms2) =
  if List.length answer1 <> List.length answer2 then false
  else begin
    let rec seed subst = function
      | [], [] -> Some subst
      | u :: us, v :: vs -> (
        match List.assoc_opt u subst with
        | Some v' -> if v' = v then seed subst (us, vs) else None
        | None -> seed ((u, v) :: subst) (us, vs))
      | _ -> None
    in
    match seed [] (answer1, answer2) with
    | None -> false
    | Some subst0 ->
      let answer_var v = List.mem v answer1 in
      let rec extend subst = function
        | [] -> true
        | atom :: rest ->
          let try_map pairs =
            let rec bind subst = function
              | [] -> Some subst
              | (v, t) :: more -> (
                match List.assoc_opt v subst with
                | Some t' -> if t' = t then bind subst more else None
                | None -> if answer_var v then None else bind ((v, t) :: subst) more)
            in
            match bind subst pairs with
            | Some subst' -> extend subst' rest
            | None -> false
          in
          List.exists
            (fun atom2 ->
              match (atom, atom2) with
              | Cq.Unary (a, z), Cq.Unary (a', z') when Symbol.equal a a' ->
                try_map [ (z, z') ]
              | Cq.Binary (p, y, z), Cq.Binary (p', y', z') when Symbol.equal p p'
                ->
                try_map [ (y, y'); (z, z') ]
              | _ -> false)
            atoms2
      in
      extend subst0 atoms1
  end

let subsumes q1 q2 =
  subsumes_raw
    (Cq.answer_vars q1, Cq.atoms q1)
    (Cq.answer_vars q2, Cq.atoms q2)

let condense ?(budget = Budget.none) wcqs =
  let arr = Array.of_list wcqs in
  let n = Array.length arr in
  let dropped = Array.make n false in
  let raw i = (arr.(i).answer, arr.(i).atoms) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Budget.step budget;
      if i <> j && (not dropped.(i)) && not dropped.(j) then
        if subsumes_raw (raw j) (raw i) then
          if subsumes_raw (raw i) (raw j) then begin
            if j < i then dropped.(i) <- true
          end
          else dropped.(i) <- true
    done
  done;
  Array.to_list arr |> List.filteri (fun i _ -> not dropped.(i))

let rewrite_condensed ?budget ?max_cqs tbox q =
  Obs.with_span "rewrite.ucq-condensed" (fun () ->
      Ndl.observe
        (ndl_of_wcqs ~site:Fault.rewrite_ucq_condensed_emit q
           (condense ?budget (rewrite_wcqs ?budget ?max_cqs tbox q))))
